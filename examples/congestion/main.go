// Congestion: background traffic outside Haechi's control appears
// mid-run and silently consumes data-node capacity. The adaptive capacity
// estimator (Algorithm 1) detects the reduced completion totals and
// shrinks the per-period token budget so reservations stay protected —
// the paper's Experiment Set 4.
package main

import (
	"fmt"
	"log"

	haechi "github.com/haechi-qos/haechi"
)

func main() {
	const scale = 10
	const periods = 24

	tenants := make([]haechi.Tenant, 10)
	for i := range tenants {
		// 70% of capacity reserved, uniformly.
		tenants[i] = haechi.Tenant{
			Name:            fmt.Sprintf("tenant-%02d", i+1),
			Reservation:     11_000,
			DemandPerPeriod: 31_000,
		}
	}
	// Record protocol events so the run is not blind: the summary line
	// at the end shows capacity updates and token traffic.
	sys, err := haechi.New(haechi.Config{Scale: scale, MeasurePeriods: periods, TraceEvents: 4096}, tenants)
	if err != nil {
		log.Fatal(err)
	}
	// Three uncontrolled background streams start at period 8 and stop at
	// period 16.
	if err := sys.ScheduleCongestion(8, 16, 3, 64); err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("period   total I/Os   phase")
	totals := make([]float64, periods)
	for _, t := range rep.Tenants {
		for p, n := range t.PerPeriod {
			if p < periods {
				totals[p] += float64(n)
			}
		}
	}
	for p, v := range totals {
		phase := "clean"
		if p >= 7 && p < 15 {
			phase = "congested"
		}
		fmt.Printf("%4d   %10.0f   %s\n", p+1, v, phase)
	}
	fmt.Printf("\nfinal capacity estimate: %d I/Os per period\n", rep.EstimatedCapacity)
	fmt.Println(sys.TraceSummary())
	fmt.Println("throughput dips while the background jobs run, then recovers as the")
	fmt.Println("estimator climbs back (+eta per period) — the paper's Figs. 16-19.")
}
