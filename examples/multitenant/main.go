// Multitenant: ten tenants with Zipf-skewed reservations, two of which
// have less demand than they reserved. The example contrasts full Haechi
// (token conversion: unused reservations are returned to the global pool
// and competed for) with Basic Haechi (unused reservations are wasted) —
// the paper's Experiment 2B.
package main

import (
	"fmt"
	"log"

	haechi "github.com/haechi-qos/haechi"
)

const scale = 10

func buildTenants() []haechi.Tenant {
	// Zipf(0.6) over 5 groups of 2, ~90% of capacity reserved — the
	// paper's Fig. 10 setup.
	reservations := []int64{23_600, 23_600, 15_600, 15_600, 12_200, 12_200, 10_300, 10_300, 9_000, 9_000}
	tenants := make([]haechi.Tenant, len(reservations))
	for i, r := range reservations {
		demand := uint64(r) + 15_700 // backlogged beyond the reservation
		if i < 2 {
			demand = uint64(r) / 2 // C1, C2 use only half their reservation
		}
		tenants[i] = haechi.Tenant{
			Name:            fmt.Sprintf("tenant-%02d", i+1),
			Reservation:     r,
			DemandPerPeriod: demand,
		}
	}
	return tenants
}

func run(mode haechi.Mode) *haechi.Report {
	sys, err := haechi.New(haechi.Config{Mode: mode, Scale: scale, MeasurePeriods: 6}, buildTenants())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	basic := run(haechi.ModeBasic)
	full := run(haechi.ModeHaechi)

	fmt.Println("tenant        reservation   basic-haechi   haechi      gain")
	for i := range full.Tenants {
		b, f := basic.Tenants[i], full.Tenants[i]
		fmt.Printf("%-12s  %9d     %9.0f     %9.0f   %+7.0f\n",
			f.Name, f.Reservation, b.MeanPeriod, f.MeanPeriod, f.MeanPeriod-b.MeanPeriod)
	}
	fmt.Printf("\ntotal throughput: basic %.0f/period, haechi %.0f/period (+%.1f%%)\n",
		basic.ThroughputPerPeriod, full.ThroughputPerPeriod,
		100*(full.ThroughputPerPeriod/basic.ThroughputPerPeriod-1))
	fmt.Println("tenants 1-2 under-use their reservations; token conversion hands the unused")
	fmt.Println("capacity to the other eight — work conservation, the paper's Fig. 10/11.")
}
