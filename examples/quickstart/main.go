// Quickstart: three tenants with different reservations share one
// RDMA-attached data node. Haechi guarantees each tenant's reservation
// while best-effort capacity is competed for fairly.
package main

import (
	"fmt"
	"log"

	haechi "github.com/haechi-qos/haechi"
)

func main() {
	// Run at 1/10 of the paper's capacities: the data node serves
	// ~157K one-sided 4 KB reads per second, a single client up to 40K.
	const scale = 10
	cap := haechi.DefaultCapacity(scale)
	fmt.Printf("data node capacity: %.0f IOPS (per client %.0f)\n\n",
		cap.AggregateOneSided, cap.PerClientOneSided)

	sys, err := haechi.New(haechi.Config{Scale: scale}, []haechi.Tenant{
		// gold reserves 35K IOPS and asks for 55K: the extra 20K is
		// served best-effort from the global token pool. (A reservation
		// of exactly C_L = 40K would leave no headroom for the client's
		// own control verbs.)
		{Name: "gold", Reservation: 35_000, DemandPerPeriod: 55_000},
		// silver reserves 25K and asks for 40K.
		{Name: "silver", Reservation: 25_000, DemandPerPeriod: 40_000},
		// batch reserves nothing: it only ever gets leftover capacity.
		{Name: "batch", Reservation: 0, DemandPerPeriod: 80_000},
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report)

	for _, t := range report.Tenants {
		if t.Reservation > 0 && !t.MetReservation {
			log.Fatalf("%s missed its reservation", t.Name)
		}
	}
	fmt.Println("all reservations met; leftover capacity flowed to best-effort demand")
}
