// Multiserver: Haechi extended to several data nodes (the paper's stated
// future work). Records are sharded across two servers; each server runs
// its own unmodified Haechi monitor; a client's total reservation is
// split into per-server slices. A client whose accesses concentrate on
// one shard needs pTrans-style rebalancing: its reservation follows its
// demand.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/haechi-qos/haechi/internal/multiserver"
	"github.com/haechi-qos/haechi/internal/workload"
)

// hotShardKeys sends every access to shard 0.
type hotShardKeys struct{ records int }

func (h *hotShardKeys) Next(rng *rand.Rand) uint64 {
	return uint64(rng.Intn(h.records)) * 2 // even keys live on server 0
}

func run(rebalanceEvery int) *multiserver.Results {
	cfg := multiserver.Config{
		Servers:          2,
		Scale:            10, // each server ~157K IOPS
		RecordsPerServer: 512,
		RebalanceEvery:   rebalanceEvery,
		Seed:             11,
	}
	specs := []multiserver.ClientSpec{
		// The skewed tenant: all demand on server 0.
		{TotalReservation: 30_000, DemandPerPeriod: 33_000, Keys: &hotShardKeys{records: 512}},
	}
	// Pressure tenants reserve most of both servers so the global pools
	// cannot silently cover the skewed tenant's shortfall. Each tenant's
	// total reservation is bounded by its own NIC (C_L = 40K here).
	for p := 0; p < 6; p++ {
		specs = append(specs, multiserver.ClientSpec{
			TotalReservation: 40_000, // 20K per server
			DemandPerPeriod:  157_000,
			Keys:             &workload.UniformKeys{N: 1024},
		})
	}
	mc, err := multiserver.New(cfg, specs)
	if err != nil {
		log.Fatal(err)
	}
	out, err := mc.Run(2, 8)
	if err != nil {
		log.Fatal(err)
	}
	return out
}

func main() {
	static := run(0)
	dynamic := run(2)

	s, d := static.PerClient[0], dynamic.PerClient[0]
	fmt.Println("skewed tenant, total reservation 30K, all demand on server 0:")
	fmt.Printf("  static equal split %v:  min %d/period  (reservation met: %v)\n",
		s.FinalSplit, s.MinPeriod, s.MetReservation)
	fmt.Printf("  with rebalancing  %v:  last period %d  (converges to the hot shard)\n",
		d.FinalSplit, d.Periods[len(d.Periods)-1])
	fmt.Println()
	fmt.Println("with a static split, half the tenant's reservation is stranded on the")
	fmt.Println("cold server; periodic pTrans-style shifts move it to where the demand is.")
}
