// Limits: reservations set the floor, limits set the ceiling. A runaway
// tenant with a limit cannot exceed it no matter how much it asks for,
// while its reservation is still honoured.
package main

import (
	"fmt"
	"log"

	haechi "github.com/haechi-qos/haechi"
)

func main() {
	const scale = 10
	sys, err := haechi.New(haechi.Config{Scale: scale}, []haechi.Tenant{
		// A runaway tenant: reserves 20K, demands 120K, capped at 35K.
		{Name: "runaway", Reservation: 20_000, Limit: 35_000, DemandPerPeriod: 120_000},
		// A victim tenant that the limit protects.
		{Name: "victim", Reservation: 30_000, DemandPerPeriod: 45_000},
		// Best-effort filler soaking up what the limit releases.
		{Name: "filler", Reservation: 0, DemandPerPeriod: 120_000},
	})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep)

	runaway := rep.Tenants[0]
	for p, n := range runaway.PerPeriod {
		if n > 35_000+100 {
			log.Fatalf("period %d: runaway exceeded its limit: %d", p+1, n)
		}
	}
	fmt.Println("the runaway tenant was held at its 35K limit every period;")
	fmt.Println("its excess demand queued at the engine and the freed capacity")
	fmt.Println("went to the filler tenant.")
}
