package haechi_test

import (
	"fmt"
	"log"

	haechi "github.com/haechi-qos/haechi"
)

// Three tenants share a simulated RDMA data node: two with reservations
// (one of them running a YCSB-B-style 5% update mix) and a best-effort
// batch tenant. The run is deterministic, so the attainment flags are
// stable.
func ExampleNew() {
	sys, err := haechi.New(haechi.Config{Scale: 100, Seed: 7}, []haechi.Tenant{
		{Name: "gold", Reservation: 3500, DemandPerPeriod: 6000},
		{Name: "silver", Reservation: 2000, DemandPerPeriod: 4000, UpdateFraction: 0.05},
		{Name: "batch", DemandPerPeriod: 8000},
	})
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Run()
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range report.Tenants {
		if t.Reservation == 0 {
			fmt.Printf("%s: best-effort\n", t.Name)
			continue
		}
		fmt.Printf("%s: reservation met = %v\n", t.Name, t.MetReservation)
	}
	// Output:
	// gold: reservation met = true
	// silver: reservation met = true
	// batch: best-effort
}
